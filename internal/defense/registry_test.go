package defense

import (
	"math"
	rand "math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

func testRng(a, b uint64) *rand.Rand { return rand.New(rand.NewPCG(a, b)) }

func testBatch(rng *rand.Rand, n int) *data.Batch {
	b := &data.Batch{}
	for i := 0; i < n; i++ {
		im := imaging.NewImage(1, 6, 6)
		for j := range im.Pix {
			im.Pix[j] = rng.Float64()
		}
		b.Append(im, i%3)
	}
	return b
}

// TestRegistryRoundTrips is the table-driven parse suite: every registered
// built-in kind must construct from its spec and resolve the expected label,
// standalone and as a single-segment pipeline.
func TestRegistryRoundTrips(t *testing.T) {
	cases := []struct {
		spec     string
		wantName string
	}{
		{"oasis:MR", "oasis(MR)"},
		{"oasis:mR", "oasis(mR)"},
		{"oasis:MR+SH", "oasis(MR+SH)"},
		{"dpsgd:1,0.1", "dpsgd(σ=0.1)"},
		{"dpsgd:2.5,0", "dpsgd(σ=0)"},
		{"prune:0.3", "prune(keep=0.3)"},
		{"prune:1", "prune(keep=1)"},
		{"ats:MR", "ats(MR)"},
		{"ats:SH", "ats(SH)"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			d, err := New(tc.spec, Config{Rng: testRng(1, 1)})
			if err != nil {
				t.Fatalf("New(%q): %v", tc.spec, err)
			}
			if d.Name() != tc.wantName {
				t.Errorf("New(%q).Name() = %q, want %q", tc.spec, d.Name(), tc.wantName)
			}
			p, err := NewPipeline(tc.spec, Config{Rng: testRng(1, 1)})
			if err != nil {
				t.Fatalf("NewPipeline(%q): %v", tc.spec, err)
			}
			if p.Name() != tc.wantName {
				t.Errorf("single-segment pipeline name = %q, want %q", p.Name(), tc.wantName)
			}
		})
	}
}

// TestRegistryMalformedSpecs: every malformed spec must error naming the
// offending kind or segment, never panic.
func TestRegistryMalformedSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string
	}{
		{"", "segment 1 is empty"},
		{"tinfoil", "unknown kind"},
		{"tinfoil:9", "unknown kind"},
		{"oasis", "unknown policy"},
		{"oasis:bogus", "unknown policy"},
		{"oasis:WO", "no-defense baseline"},
		{"dpsgd:1", "want dpsgd:<clip>,<sigma>"},
		{"dpsgd:x,y", "numeric"},
		{"dpsgd:0,0.1", "clip > 0"},
		{"dpsgd:1,-1", "sigma ≥ 0"},
		{"prune:nope", "prune:<keep>"},
		{"prune:0", "outside (0,1]"},
		{"prune:1.5", "outside (0,1]"},
		{"ats:bogus", "unknown policy"},
		{"ats:WO", "needs a transformation policy"},
		{"oasis:MR|", "segment 2 is empty"},
		{"|oasis:MR", "segment 1 is empty"},
		{"oasis:MR||prune:0.5", "segment 2 is empty"},
		{"oasis:MR|tinfoil", "segment 2"},
		{"oasis:MR|dpsgd:1", "segment 2"},
		{" | ", "segment 1 is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			if _, err := NewPipeline(tc.spec, Config{Rng: testRng(2, 2)}); err == nil {
				t.Fatalf("NewPipeline(%q) accepted", tc.spec)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("NewPipeline(%q) error %q does not contain %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

// TestPipelineComposesStages: a composed pipeline must expand the batch
// through its batch stage AND transform gradients through its gradient
// stage, with a deterministic composite name in application order.
func TestPipelineComposesStages(t *testing.T) {
	p, err := NewPipeline("oasis:MR|dpsgd:1,0", Config{Rng: testRng(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if want := "oasis(MR)|dpsgd(σ=0)"; p.Name() != want {
		t.Errorf("pipeline name = %q, want %q", p.Name(), want)
	}
	if names := p.StageNames(); !reflect.DeepEqual(names, []string{"oasis(MR)", "dpsgd(σ=0)"}) {
		t.Errorf("stage names = %v", names)
	}
	if len(p.Stages()) != 2 {
		t.Errorf("len(Stages()) = %d, want 2", len(p.Stages()))
	}

	b := testBatch(testRng(4, 4), 4)
	out := p.ApplyBatch(b)
	if out.Size() != 16 { // MR appends 3 rotations per image
		t.Errorf("batch stage expanded 4 → %d images, want 16", out.Size())
	}
	if b.Size() != 4 {
		t.Errorf("input batch mutated to %d images", b.Size())
	}

	g := tensor.New(5, 5)
	g.FillRandn(testRng(5, 5), 10) // norm >> clip=1
	p.ApplyGrads([]*tensor.Tensor{g})
	if n := g.L2Norm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("gradient stage did not clip: norm %g, want 1", n)
	}
}

// TestPipelineStageOrder: batch stages run in spec order — ats after oasis
// transforms the expanded batch, oasis after ats expands the replaced one.
// Both orders must produce the size the order implies.
func TestPipelineStageOrder(t *testing.T) {
	b := testBatch(testRng(6, 6), 2)
	first, err := NewPipeline("oasis:MR|ats:SH", Config{Rng: testRng(7, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if got := first.ApplyBatch(b).Size(); got != 8 {
		t.Errorf("oasis|ats: %d images, want 8 (expand then replace)", got)
	}
	second, err := NewPipeline("ats:SH|oasis:MR", Config{Rng: testRng(7, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if got := second.ApplyBatch(b).Size(); got != 8 {
		t.Errorf("ats|oasis: %d images, want 8 (replace then expand)", got)
	}
}

// TestPipelineDuplicateStagesStack: the same kind may appear twice; both
// instances apply (two prune passes tighten monotonically, names repeat).
func TestPipelineDuplicateStagesStack(t *testing.T) {
	p, err := NewPipeline("prune:0.5|prune:0.5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "prune(keep=0.5)|prune(keep=0.5)"; p.Name() != want {
		t.Errorf("duplicate-stage name = %q, want %q", p.Name(), want)
	}
	g := tensor.New(100)
	g.FillRandn(testRng(8, 8), 1)
	p.ApplyGrads([]*tensor.Tensor{g})
	zeros := 0
	for _, v := range g.Data() {
		if v == 0 {
			zeros++
		}
	}
	// First pass zeroes ~50; the second prunes the survivors again, so well
	// over half of all coordinates end up zero.
	if zeros < 50 {
		t.Errorf("stacked pruning zeroed only %d/100 coordinates", zeros)
	}
}

// TestComposeAndAdapters: Compose wraps constructed defenses, and the
// Batch/Grad adapters expose the two stages in the protocol-layer shapes.
func TestComposeAndAdapters(t *testing.T) {
	dp, err := NewDPSGD(1, 0, testRng(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	p := Compose(gradStage{dp})
	if p.Name() != "dpsgd(σ=0)" {
		t.Errorf("composed name = %q", p.Name())
	}
	ba := BatchAdapter{D: p}
	b := testBatch(testRng(10, 10), 3)
	out, err := ba.Apply(b)
	if err != nil || out.Size() != 3 {
		t.Errorf("BatchAdapter.Apply = (%v, %v), want identity pass-through", out.Size(), err)
	}
	if ba.Name() != p.Name() {
		t.Errorf("BatchAdapter name %q != pipeline name %q", ba.Name(), p.Name())
	}
	g := tensor.New(8)
	g.FillRandn(testRng(11, 11), 10)
	ga := GradAdapter{D: p}
	ga.Apply([]*tensor.Tensor{g})
	if n := g.L2Norm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("GradAdapter did not reach the gradient stage: norm %g", n)
	}
	if ga.Name() != p.Name() {
		t.Errorf("GradAdapter name %q != pipeline name %q", ga.Name(), p.Name())
	}
}

// TestRegisterValidation: the registry rejects empty, duplicate, and
// metacharacter kinds, and accepts a well-formed custom family that then
// resolves through New, Names, Known, and pipelines.
func TestRegisterValidation(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := Register("oasis", newOASISStage); err == nil {
		t.Error("duplicate kind accepted")
	}
	if err := Register("a:b", newOASISStage); err == nil {
		t.Error("kind containing ':' accepted")
	}
	if err := Register("a|b", newOASISStage); err == nil {
		t.Error("kind containing '|' accepted")
	}
	if err := Register("noop-test", func(arg string, cfg Config) (Defense, error) {
		return gradStage{mustPrune(t, 1)}, nil
	}); err != nil {
		t.Fatalf("custom registration failed: %v", err)
	}
	if !Known("noop-test") {
		t.Error("Known(noop-test) = false after Register")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		found = found || n == "noop-test"
	}
	if !found {
		t.Errorf("Names() %v missing registered kind", names)
	}
	if _, err := NewPipeline("noop-test|prune:0.9", Config{}); err != nil {
		t.Errorf("custom kind rejected as pipeline segment: %v", err)
	}
}

func mustPrune(t *testing.T, keep float64) *Pruning {
	t.Helper()
	p, err := NewPruning(keep)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPipelineStageRngsIndependent: each stage draws from its own stream, so
// appending a stage must not change the draws of the stage before it.
func TestPipelineStageRngsIndependent(t *testing.T) {
	apply := func(spec string) []float64 {
		p, err := NewPipeline(spec, Config{Rng: testRng(12, 12)})
		if err != nil {
			t.Fatal(err)
		}
		g := tensor.New(16)
		g.Fill(0.01)
		p.ApplyGrads([]*tensor.Tensor{g})
		return append([]float64(nil), g.Data()...)
	}
	solo := apply("dpsgd:1,0.5")
	chained := apply("dpsgd:1,0.5|ats:MR") // appended stage is gradient-neutral
	if !reflect.DeepEqual(solo, chained) {
		t.Error("appending a stage perturbed the noise draws of the stage before it")
	}
}
