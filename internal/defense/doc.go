// Package defense is the composable client-side defense layer: every
// countermeasure the paper's §V comparison evaluates — and any family a
// library user registers — sits behind one two-stage contract and a named
// constructor registry that mirrors internal/attack.
//
// # The two-stage model
//
// A client-side defense can act in exactly two places of a training round:
//
//   - batch stage: rewrite the local batch D before gradients are computed.
//     OASIS expands D to D′ = D ∪ ⋃ X′_t (Eq. 7, internal/core); ATS
//     replaces each image with one transformed copy (Gao et al. [41]).
//   - gradient stage: post-process the gradients before upload. DPSGD clips
//     the joint norm and adds Gaussian noise (Abadi et al.); pruning zeroes
//     all but the largest-magnitude fraction (Zhu et al. [38], Sun et al.
//     [37]).
//
// The Defense interface carries both stages (ApplyBatch, ApplyGrads); a
// defense implements the stage it acts in and leaves the other the identity.
// That single contract is what lets defenses compose: a Pipeline chains any
// ordered mix of stages, applying every batch rewrite before training and
// every gradient transform after, which is what real deployments do (e.g.
// OASIS augmentation *plus* DP noise).
//
// # The registry
//
// Built-in kinds and their spec syntax:
//
//	oasis:<policy>        OASIS batch augmentation (MR, mR, SH, HFlip, VFlip, MR+SH)
//	dpsgd:<clip>,<sigma>  DP-SGD gradient clipping + Gaussian noise
//	prune:<keep>          gradient sparsification keeping the top fraction
//	ats:<policy>          transformation replacement (Gao et al. [41])
//
// Resolve one with New("prune:0.3", cfg), or an ordered chain with
// NewPipeline("oasis:MR|dpsgd:1,0.1", cfg). Register adds a custom family;
// it immediately becomes a valid scenario defense kind (internal/sim), sweep
// grid column (internal/experiments), and pipeline segment — validation
// errors list Names() dynamically, so they never go stale.
//
// Stochastic stages (DPSGD noise, ATS transform choice) draw from
// Config.Rng. Give each client its own stream: stateful defenses must not be
// shared across concurrently-trained clients (see fl.Client's concurrency
// contract). NewPipeline splits an independent child stream per stage so
// appending a stage never perturbs the draws of earlier ones — this is what
// keeps scenario reports bit-identical across worker counts.
//
// The non-OASIS baselines matter to the paper because they fail in ways
// OASIS does not: noise strong enough to hide content also destroys model
// utility; data remains recognizable even with most gradients pruned [17];
// and a neuron activated only by an ATS-replaced image still reconstructs it
// verbatim (Figure 14).
package defense
